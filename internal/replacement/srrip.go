package replacement

// SRRIPTable implements Static Re-Reference Interval Prediction with
// 2-bit re-reference prediction values (RRPVs). Lines are inserted with
// a "long" re-reference prediction (RRPV = max-1), promoted to "near
// immediate" (RRPV = 0) on a hit, and evicted when their RRPV reaches
// the "distant" value (max). When no way is distant, all RRPVs age in
// lockstep until one is.
//
// The concrete type is exported so internal/cache can devirtualize the
// hot path (see LRUStack). RRPVs live in one flat backing array indexed
// set*assoc+way.
type SRRIPTable struct {
	//tlavet:resetexempt geometry fixed at construction, identical for every reuse
	assoc int
	//tlavet:resetexempt derived from srripBits at construction, never varies
	max  uint8
	rrpv []uint8 // rrpv[set*assoc+way]
}

const srripBits = 2

func newSRRIP(numSets, assoc int) *SRRIPTable {
	p := &SRRIPTable{
		assoc: assoc,
		max:   1<<srripBits - 1,
		rrpv:  make([]uint8, numSets*assoc),
	}
	for i := range p.rrpv {
		p.rrpv[i] = p.max
	}
	return p
}

func (p *SRRIPTable) Name() string { return "SRRIP" }

// ResetState marks every line distant, the fresh-table state.
func (p *SRRIPTable) ResetState() {
	for i := range p.rrpv {
		p.rrpv[i] = p.max
	}
}

// Touch promotes way to the near-immediate re-reference prediction.
func (p *SRRIPTable) Touch(set, way int) { p.rrpv[set*p.assoc+way] = 0 }

// Insert fills way with the long re-reference prediction.
func (p *SRRIPTable) Insert(set, way int) { p.rrpv[set*p.assoc+way] = p.max - 1 }

// Demote marks way distant, making it the next victim candidate.
func (p *SRRIPTable) Demote(set, way int) { p.rrpv[set*p.assoc+way] = p.max }

// Victim returns the first distant way, ageing the set until one exists.
func (p *SRRIPTable) Victim(set int) int {
	rr := p.rrpv[set*p.assoc : set*p.assoc+p.assoc]
	for {
		for w := range rr {
			if rr[w] == p.max {
				return w
			}
		}
		for w := range rr {
			rr[w]++
		}
	}
}

package replacement

// srrip implements Static Re-Reference Interval Prediction with 2-bit
// re-reference prediction values (RRPVs). Lines are inserted with a
// "long" re-reference prediction (RRPV = max-1), promoted to "near
// immediate" (RRPV = 0) on a hit, and evicted when their RRPV reaches
// the "distant" value (max). When no way is distant, all RRPVs age in
// lockstep until one is.
type srrip struct {
	assoc int
	max   uint8
	rrpv  [][]uint8
}

const srripBits = 2

func newSRRIP(numSets, assoc int) *srrip {
	p := &srrip{
		assoc: assoc,
		max:   1<<srripBits - 1,
		rrpv:  make([][]uint8, numSets),
	}
	for s := range p.rrpv {
		p.rrpv[s] = make([]uint8, assoc)
		for w := range p.rrpv[s] {
			p.rrpv[s][w] = p.max
		}
	}
	return p
}

func (p *srrip) Name() string { return "SRRIP" }

func (p *srrip) Touch(set, way int)  { p.rrpv[set][way] = 0 }
func (p *srrip) Insert(set, way int) { p.rrpv[set][way] = p.max - 1 }
func (p *srrip) Demote(set, way int) { p.rrpv[set][way] = p.max }

func (p *srrip) Victim(set int) int {
	rr := p.rrpv[set]
	for {
		for w := 0; w < p.assoc; w++ {
			if rr[w] == p.max {
				return w
			}
		}
		for w := 0; w < p.assoc; w++ {
			rr[w]++
		}
	}
}

package replacement

// Ranker is an optional interface a Policy may implement to expose a
// per-way eviction-preference rank for decision tracing: 0 is the most
// protected way and larger values are closer to eviction, so ordering
// candidates by descending rank reproduces the policy's victim
// preference. The scale is policy-relative (an LRU rank is a stack
// position, an SRRIP rank an RRPV); ranks are comparable within one
// cache, not across policies. Policies without a meaningful per-way
// order simply do not implement the interface and trace as
// telemetry.RankUnknown.
type Ranker interface {
	WayRank(set, way int) uint8
}

// WayRank implements Ranker: the way's recency-stack distance from MRU,
// so the LRU way has rank assoc-1.
func (p *LRUStack) WayRank(set, way int) uint8 { return uint8(p.StackPosition(set, way)) }

// WayRank implements Ranker: 0 for a referenced way, 1 for an
// unreferenced one (the next-generation victim candidates).
func (p *NRUBits) WayRank(set, way int) uint8 {
	if p.ref[set*p.assoc+way] {
		return 0
	}
	return 1
}

// WayRank implements Ranker: the way's re-reference prediction value
// (max = distant = next to evict).
func (p *SRRIPTable) WayRank(set, way int) uint8 { return p.rrpv[set*p.assoc+way] }

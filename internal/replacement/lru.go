package replacement

import "math/bits"

// lruNibbleOnes and lruNibbleHighs are the SWAR masks for locating a
// nibble by value: repeated 0x1 and repeated 0x8.
const (
	lruNibbleOnes  = 0x1111_1111_1111_1111
	lruNibbleHighs = 0x8888_8888_8888_8888
	// lruIdentity is the identity recency order for the packed
	// representation: nibble p holds way p.
	lruIdentity = 0xFEDC_BA98_7654_3210
)

// LRUStack keeps an exact recency stack per set. Position 0 is the MRU
// way and position assoc-1 the LRU way.
//
// Two representations share the type. For assoc <= 16 — every cache
// geometry the simulator actually builds — each set's stack packs into
// one uint64 of nibbles (nibble p = the way at recency position p, MRU
// in the low nibble, nibbles at and above assoc always zero), so
// promotion and demotion are a handful of shift/mask operations instead
// of an O(assoc) byte shuffle, and the way's current position is found
// with a branch-free SWAR nibble search. Wider caches (up to 256 ways)
// fall back to explicit stack/inverse byte arrays, both flat and
// indexed set*assoc+i.
//
// The concrete type is exported so that internal/cache can devirtualize
// the hot path: when a cache's policy is exactly LRU it calls these
// methods directly (no interface dispatch), keeping the Policy
// interface for construction, tests, and checker hooks.
type LRUStack struct {
	//tlavet:resetexempt geometry fixed at construction, identical for every reuse
	assoc  int
	packed []uint64 // assoc <= 16: packed[set], nibble p = way at position p
	stack  []uint8  // assoc > 16: stack[set*assoc+pos] = way
	pos    []uint8  // assoc > 16: pos[set*assoc+way] = position (inverse map)
}

func newLRU(numSets, assoc int) *LRUStack {
	if assoc > 256 {
		panic("replacement: LRU supports at most 256 ways")
	}
	p := &LRUStack{assoc: assoc}
	if assoc <= 16 {
		p.packed = make([]uint64, numSets)
	} else {
		p.stack = make([]uint8, numSets*assoc)
		p.pos = make([]uint8, numSets*assoc)
	}
	p.ResetState()
	return p
}

func (p *LRUStack) Name() string { return "LRU" }

// ResetState restores the initial recency order (way i at position i).
func (p *LRUStack) ResetState() {
	if p.packed != nil {
		// The mask is all-ones when assoc is 16: 1<<64 is 0 in Go.
		id := uint64(lruIdentity) & (uint64(1)<<(4*p.assoc) - 1)
		for s := range p.packed {
			p.packed[s] = id
		}
		return
	}
	for i := range p.stack {
		w := uint8(i % p.assoc)
		p.stack[i] = w
		p.pos[i] = w
	}
}

// nibblePos returns the position of the lowest nibble of v equal to way
// (way < 16, which the packed representation guarantees). The borrow
// trick flags zero nibbles of v^(way*ones); a borrow can only originate
// at a genuine zero nibble, so the lowest flag is always exact.
func nibblePos(v, way uint64) int {
	x := v ^ way*lruNibbleOnes
	return bits.TrailingZeros64((x-lruNibbleOnes)&^x&lruNibbleHighs) >> 2
}

// moveTo moves way to position target within set's stack, shifting the
// intervening entries by one.
func (p *LRUStack) moveTo(set, way, target int) {
	if p.packed != nil {
		v := p.packed[set]
		cur := nibblePos(v, uint64(way))
		// Delete way's nibble (everything above it shifts down one),
		// then reopen a slot at target (everything at and above it
		// shifts back up) and place way there. Nibbles at and above
		// assoc stay zero throughout.
		low := uint64(1)<<(4*cur) - 1
		v = v&low | v>>4&^low
		low = uint64(1)<<(4*target) - 1
		p.packed[set] = v&low | (v&^low)<<4 | uint64(way)<<(4*target)
		return
	}
	base := set * p.assoc
	st := p.stack[base : base+p.assoc]
	pos := p.pos[base : base+p.assoc]
	cur := int(pos[way])
	if cur == target {
		return
	}
	if cur < target {
		// Shift entries (cur, target] left by one.
		for i := cur; i < target; i++ {
			st[i] = st[i+1]
			pos[st[i]] = uint8(i)
		}
	} else {
		// Shift entries [target, cur) right by one.
		for i := cur; i > target; i-- {
			st[i] = st[i-1]
			pos[st[i]] = uint8(i)
		}
	}
	st[target] = uint8(way)
	pos[way] = uint8(target)
}

// Touch promotes way to MRU.
func (p *LRUStack) Touch(set, way int) {
	if p.packed != nil {
		v := p.packed[set]
		if v&0xF == uint64(way) {
			return // already MRU: sequential fetch hits land here
		}
		cur := nibblePos(v, uint64(way))
		low := v & (uint64(1)<<(4*cur) - 1)
		p.packed[set] = v&^(uint64(1)<<(4*(cur+1))-1) | low<<4 | uint64(way)
		return
	}
	p.moveTo(set, way, 0)
}

// Insert places a newly filled way at MRU.
func (p *LRUStack) Insert(set, way int) { p.Touch(set, way) }

// Demote moves way to the LRU position.
func (p *LRUStack) Demote(set, way int) { p.moveTo(set, way, p.assoc-1) }

// Victim returns the LRU way of set.
func (p *LRUStack) Victim(set int) int {
	if p.packed != nil {
		return int(p.packed[set] >> (4 * (p.assoc - 1)) & 0xF)
	}
	return int(p.stack[set*p.assoc+p.assoc-1])
}

// StackPosition reports way's distance from MRU (0 = MRU). It is
// exported on the concrete type for tests and for the Figure 3 worked
// example, which needs to display LRU chains.
func (p *LRUStack) StackPosition(set, way int) int {
	if p.packed != nil {
		return nibblePos(p.packed[set], uint64(way))
	}
	return int(p.pos[set*p.assoc+way])
}

package replacement

// lru keeps an exact recency stack per set. stack[set][0] is the MRU
// way and stack[set][assoc-1] the LRU way. Operations are O(assoc),
// which is fine for the associativities used in cache simulation
// (4–16 ways) and keeps the representation trivially auditable.
type lru struct {
	assoc int
	stack [][]uint8 // stack[set][pos] = way
	pos   [][]uint8 // pos[set][way] = position in stack (inverse map)
}

func newLRU(numSets, assoc int) *lru {
	if assoc > 256 {
		panic("replacement: LRU supports at most 256 ways")
	}
	p := &lru{
		assoc: assoc,
		stack: make([][]uint8, numSets),
		pos:   make([][]uint8, numSets),
	}
	for s := range p.stack {
		p.stack[s] = make([]uint8, assoc)
		p.pos[s] = make([]uint8, assoc)
		for w := 0; w < assoc; w++ {
			p.stack[s][w] = uint8(w)
			p.pos[s][w] = uint8(w)
		}
	}
	return p
}

func (p *lru) Name() string { return "LRU" }

// moveTo moves way to position target within set's stack, shifting the
// intervening entries by one.
func (p *lru) moveTo(set, way, target int) {
	cur := int(p.pos[set][way])
	if cur == target {
		return
	}
	st := p.stack[set]
	if cur < target {
		// Shift entries (cur, target] left by one.
		for i := cur; i < target; i++ {
			st[i] = st[i+1]
			p.pos[set][st[i]] = uint8(i)
		}
	} else {
		// Shift entries [target, cur) right by one.
		for i := cur; i > target; i-- {
			st[i] = st[i-1]
			p.pos[set][st[i]] = uint8(i)
		}
	}
	st[target] = uint8(way)
	p.pos[set][way] = uint8(target)
}

func (p *lru) Touch(set, way int)  { p.moveTo(set, way, 0) }
func (p *lru) Insert(set, way int) { p.moveTo(set, way, 0) }
func (p *lru) Demote(set, way int) { p.moveTo(set, way, p.assoc-1) }

func (p *lru) Victim(set int) int { return int(p.stack[set][p.assoc-1]) }

// StackPosition reports way's distance from MRU (0 = MRU). It is
// exported on the concrete type for tests and for the Figure 3 worked
// example, which needs to display LRU chains.
func (p *lru) StackPosition(set, way int) int { return int(p.pos[set][way]) }

// Package replacement implements the cache replacement policies used by
// the TLA cache-management study: true LRU (core caches), Not Recently
// Used (the paper's baseline LLC policy), Static RRIP (the "more
// intelligent replacement" the paper's footnote 4 verifies against), and
// a pseudo-random policy used as a stress baseline in tests.
//
// A Policy instance manages the replacement state for one cache (all of
// its sets). Policies are deliberately unaware of tags, validity, and
// inclusion; the cache layer handles those and calls into the policy on
// hits, fills, and victim selection. This separation is what lets Query
// Based Selection (QBS) re-run victim selection after promoting a way:
// for LRU, NRU, Random, and the insertion-policy family, promoting a
// way (Touch) guarantees that an immediately following Victim call
// returns a different way (given at least two ways). SRRIP is the one
// exception: when every line in a set is near-immediate, the aging scan
// can return the just-promoted way again — the hierarchy's QBS loop
// detects the fixed point and stops querying.
package replacement

import "fmt"

// Kind names a replacement policy implementation. Switches over Kind
// must name every policy (tlavet's exhaustive check): a default arm
// is exactly how a newly added policy would be silently mis-handled
// by the String/New dispatch ladders.
//
//tlavet:exhaustive
type Kind int

const (
	// LRU is true least-recently-used replacement, kept as an exact
	// recency stack per set. The paper uses LRU in the L1 and L2 caches.
	LRU Kind = iota
	// NRU is Not Recently Used: one reference bit per line; victims are
	// chosen among lines with a cleared bit, and all bits (except the
	// newly touched line's) are cleared whenever every line in the set
	// has been referenced. The paper's baseline LLC policy.
	NRU
	// SRRIP is Static Re-Reference Interval Prediction with 2-bit RRPVs
	// (Jaleel et al., ISCA 2010), the "more intelligent" policy the
	// paper's footnote verifies the inclusion problem against.
	SRRIP
	// Random picks a pseudo-random victim. Deterministic (xorshift64)
	// so simulations remain reproducible.
	Random
)

// String returns the conventional short name of the policy kind.
func (k Kind) String() string {
	switch k {
	case LRU:
		return "LRU"
	case NRU:
		return "NRU"
	case SRRIP:
		return "SRRIP"
	case Random:
		return "Random"
	case LIP:
		return "LIP"
	case BIP:
		return "BIP"
	case DIP:
		return "DIP"
	case BRRIP:
		return "BRRIP"
	case DRRIP:
		return "DRRIP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Policy tracks replacement state for every set of one cache.
//
// Way indices passed to Touch/Insert/Demote must come from the cache
// layer (either a hit way or the way returned by Victim). Victim never
// inspects validity; the cache layer is expected to prefer invalid ways
// itself and only consult Victim when the set is full.
type Policy interface {
	// Name returns the policy's short name (e.g. "NRU").
	Name() string
	// Touch records a reference to way (a cache hit or an explicit
	// promotion such as a temporal-locality hint or a QBS save).
	//
	//tlavet:hotpath
	Touch(set, way int)
	// Insert records that a new line has been filled into way and
	// initialises its replacement state.
	Insert(set, way int)
	// Demote marks way as the prime eviction candidate of its set (used
	// when a line is known dead, e.g. an exclusive LLC invalidating on
	// hit, or an early core invalidation wanting the line gone next).
	Demote(set, way int)
	// Victim returns the way the policy would evict from set next.
	// Calling Victim repeatedly without intervening state changes
	// returns the same way.
	//
	//tlavet:hotpath
	Victim(set int) int
}

// StateResetter is an optional interface a Policy may implement to
// return to its freshly constructed state in place. The cache layer
// prefers it over rebuilding the policy, so warmup resets do not
// reallocate replacement metadata. Implementations must reset ALL
// adaptive state (recency orders, reference bits, fill counters,
// set-dueling selectors).
type StateResetter interface {
	// ResetState returns the policy to its freshly constructed state.
	// The resetcover prover checks every implementation: each field of
	// the implementing type must be restored here (or by a helper it
	// calls) or carry a //tlavet:resetexempt justification.
	//
	//tlavet:resetcover
	ResetState()
}

// New constructs a policy of the given kind for a cache with numSets
// sets of assoc ways. It panics if the geometry is not positive, as a
// misconfigured cache is a programming error.
func New(kind Kind, numSets, assoc int) Policy {
	if numSets <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("replacement: invalid geometry %dx%d", numSets, assoc))
	}
	switch kind {
	case LRU:
		return newLRU(numSets, assoc)
	case NRU:
		return newNRU(numSets, assoc)
	case SRRIP:
		return newSRRIP(numSets, assoc)
	case Random:
		return newRandom(numSets, assoc)
	case LIP:
		return newLIP(numSets, assoc)
	case BIP:
		return newBIP(numSets, assoc)
	case DIP:
		return newDIP(numSets, assoc)
	case BRRIP:
		return newBRRIP(numSets, assoc)
	case DRRIP:
		return newDRRIP(numSets, assoc)
	default:
		panic(fmt.Sprintf("replacement: unknown kind %d", int(kind)))
	}
}

package replacement

import (
	"testing"
	"testing/quick"
)

func TestLRUInitialVictimIsLastWay(t *testing.T) {
	p := newLRU(4, 8)
	for s := 0; s < 4; s++ {
		if got := p.Victim(s); got != 7 {
			t.Errorf("set %d: initial victim = %d, want 7", s, got)
		}
	}
}

func TestLRUTouchMovesToMRU(t *testing.T) {
	p := newLRU(1, 4)
	p.Touch(0, 2)
	if got := p.StackPosition(0, 2); got != 0 {
		t.Fatalf("touched way position = %d, want 0 (MRU)", got)
	}
	if got := p.Victim(0); got == 2 {
		t.Fatalf("victim = touched way %d", got)
	}
}

func TestLRUVictimIsLeastRecentlyTouched(t *testing.T) {
	p := newLRU(1, 4)
	// Touch ways in order 3,1,0,2; way 3 is now least recently used.
	for _, w := range []int{3, 1, 0, 2} {
		p.Touch(0, w)
	}
	if got := p.Victim(0); got != 3 {
		t.Fatalf("victim = %d, want 3", got)
	}
}

func TestLRUDemoteMakesVictim(t *testing.T) {
	p := newLRU(1, 8)
	for w := 0; w < 8; w++ {
		p.Touch(0, w)
	}
	p.Demote(0, 4)
	if got := p.Victim(0); got != 4 {
		t.Fatalf("victim after demote = %d, want 4", got)
	}
}

func TestLRUSetsAreIndependent(t *testing.T) {
	p := newLRU(2, 4)
	p.Touch(0, 3)
	if got := p.Victim(1); got != 3 {
		t.Fatalf("set 1 victim = %d; touching set 0 must not affect set 1", got)
	}
}

// refLRU is a trivially-correct reference: a slice ordered MRU-first.
type refLRU []int

func newRefLRU(assoc int) refLRU {
	r := make(refLRU, assoc)
	for i := range r {
		r[i] = i
	}
	return r
}

func (r refLRU) promote(way int) {
	idx := 0
	for i, w := range r {
		if w == way {
			idx = i
			break
		}
	}
	copy(r[1:idx+1], r[:idx])
	r[0] = way
}

func (r refLRU) demote(way int) {
	idx := 0
	for i, w := range r {
		if w == way {
			idx = i
			break
		}
	}
	copy(r[idx:], r[idx+1:len(r)])
	r[len(r)-1] = way
}

// TestLRUMatchesReferenceModel drives both LRU representations — the
// packed nibble stack (assoc 16 and a non-power-of-two 5) and the wide
// byte-array fallback (assoc 20) — against the obviously-correct slice
// model with the same random operation stream, requiring identical
// victims and stack positions throughout.
func TestLRUMatchesReferenceModel(t *testing.T) {
	for _, assoc := range []int{5, 16, 20} {
		assoc := assoc
		f := func(ops []uint16) bool {
			p := newLRU(1, assoc)
			ref := newRefLRU(assoc)
			for _, op := range ops {
				way := int(op) % assoc
				switch (int(op) / assoc) % 3 {
				case 0:
					p.Touch(0, way)
					ref.promote(way)
				case 1:
					p.Insert(0, way)
					ref.promote(way)
				case 2:
					p.Demote(0, way)
					ref.demote(way)
				}
				if p.Victim(0) != ref[assoc-1] {
					return false
				}
				for i, w := range ref {
					if p.StackPosition(0, w) != i {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("assoc %d: %v", assoc, err)
		}
	}
}

// TestLRUStackIsPermutation checks the internal state remains a valid
// permutation of the ways under random operations, in both
// representations, using the same invariants the audit-mode CheckSet
// enforces.
func TestLRUStackIsPermutation(t *testing.T) {
	for _, assoc := range []int{8, 20} {
		assoc := assoc
		f := func(ops []uint8) bool {
			p := newLRU(2, assoc)
			for _, op := range ops {
				way := int(op) % assoc
				switch (int(op) / assoc) % 3 {
				case 0:
					p.Touch(0, way)
				case 1:
					p.Insert(0, way)
				case 2:
					p.Demote(0, way)
				}
				// Set 0 churns; set 1 must stay untouched and valid.
				for s := 0; s < 2; s++ {
					if p.CheckSet(s) != nil {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("assoc %d: %v", assoc, err)
		}
	}
}

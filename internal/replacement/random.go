package replacement

// random selects victims with a deterministic xorshift64 sequence so
// simulations stay reproducible. The victim for a set is latched until
// replacement state changes, preserving the Policy contract that
// repeated Victim calls agree.
type random struct {
	//tlavet:resetexempt geometry fixed at construction, identical for every reuse
	assoc  int
	state  uint64
	victim []int // latched victim per set, -1 when stale
}

// randomSeed is the fixed xorshift64 seed every fresh (or reset)
// Random policy starts from.
const randomSeed uint64 = 0x9e3779b97f4a7c15

func newRandom(numSets, assoc int) *random {
	p := &random{
		assoc:  assoc,
		state:  randomSeed,
		victim: make([]int, numSets),
	}
	for s := range p.victim {
		p.victim[s] = -1
	}
	return p
}

func (p *random) Name() string { return "Random" }

// ResetState rewinds the victim rng and unlatches every set.
func (p *random) ResetState() {
	p.state = randomSeed
	for s := range p.victim {
		p.victim[s] = -1
	}
}

func (p *random) next() uint64 {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return p.state
}

func (p *random) Touch(set, way int) {
	// A touched way must stop being the latched victim so that QBS's
	// promote-and-reselect loop makes progress under Random too; the
	// replacement pick excludes the touched way.
	if p.victim[set] == way && p.assoc > 1 {
		v := int(p.next() % uint64(p.assoc-1))
		if v >= way {
			v++
		}
		p.victim[set] = v
	}
}

func (p *random) Insert(set, way int) { p.victim[set] = -1 }
func (p *random) Demote(set, way int) { p.victim[set] = way }

func (p *random) Victim(set int) int {
	if p.victim[set] < 0 {
		p.victim[set] = int(p.next() % uint64(p.assoc))
	}
	return p.victim[set]
}

package replacement

import "testing"

func TestBRRIPInsertsDistant(t *testing.T) {
	p := newBRRIP(1, 4)
	if p.Name() != "BRRIP" {
		t.Fatalf("Name = %q", p.Name())
	}
	long, distant := 0, 0
	for i := 0; i < 32*8; i++ {
		p.Insert(0, 1)
		switch p.rrpv[0*p.assoc+1] {
		case p.max:
			distant++
		case p.max - 1:
			long++
		default:
			t.Fatalf("unexpected RRPV %d after BRRIP insert", p.rrpv[0*p.assoc+1])
		}
	}
	if long != 8 {
		t.Fatalf("long insertions = %d of 256, want exactly 8 (1/32)", long)
	}
	if distant != 248 {
		t.Fatalf("distant insertions = %d", distant)
	}
}

func TestBRRIPResistsThrash(t *testing.T) {
	// A touched resident survives a fill stream under BRRIP: stream
	// fills land distant and evict each other.
	p := newBRRIP(1, 4)
	p.Insert(0, 0)
	p.Touch(0, 0) // resident at RRPV 0
	for i := 0; i < 100; i++ {
		v := p.Victim(0)
		if v == 0 {
			t.Fatalf("iteration %d: BRRIP evicted the touched resident", i)
		}
		p.Insert(0, v)
	}
}

func TestDRRIPLeadersAndPsel(t *testing.T) {
	p := newDRRIP(64, 4)
	start := p.PSEL()
	for i := 0; i < 7; i++ {
		p.Insert(0, i%4) // SRRIP leader set: votes for BRRIP
	}
	if p.PSEL() != start+7 {
		t.Fatalf("PSEL = %d, want %d", p.PSEL(), start+7)
	}
	for i := 0; i < 3; i++ {
		p.Insert(1, i%4) // BRRIP leader set: votes for SRRIP
	}
	if p.PSEL() != start+4 {
		t.Fatalf("PSEL = %d, want %d", p.PSEL(), start+4)
	}
	// SRRIP leader always inserts long.
	p.Insert(0, 2)
	if p.rrpv[0*p.assoc+2] != p.max-1 {
		t.Fatalf("SRRIP leader inserted at %d", p.rrpv[0*p.assoc+2])
	}
}

func TestDRRIPFollowersSwitch(t *testing.T) {
	p := newDRRIP(64, 4)
	// Saturate toward BRRIP.
	for i := 0; i < 2*dipPselMax; i++ {
		p.Insert(0, i%4)
	}
	if p.PSEL() != dipPselMax {
		t.Fatalf("PSEL = %d", p.PSEL())
	}
	distant := 0
	for i := 0; i < 31; i++ {
		p.Insert(5, 1)
		if p.rrpv[5*p.assoc+1] == p.max {
			distant++
		}
	}
	if distant < 29 {
		t.Fatalf("with BRRIP winning, only %d/31 follower inserts were distant", distant)
	}
	// Saturate toward SRRIP.
	for i := 0; i < 3*dipPselMax; i++ {
		p.Insert(1, i%4)
	}
	p.Insert(6, 1)
	if p.rrpv[6*p.assoc+1] != p.max-1 {
		t.Fatalf("with SRRIP winning, follower inserted at %d", p.rrpv[6*p.assoc+1])
	}
}

func TestRRIPKindsRegistered(t *testing.T) {
	for _, k := range []Kind{BRRIP, DRRIP} {
		p := New(k, 4, 4)
		if p.Name() != k.String() {
			t.Errorf("kind %v: Name %q != String %q", k, p.Name(), k.String())
		}
		// Victim always valid.
		for i := 0; i < 20; i++ {
			p.Insert(i%4, i%4)
			v := p.Victim(i % 4)
			if v < 0 || v >= 4 {
				t.Fatalf("%v: victim %d out of range", k, v)
			}
		}
	}
}

package replacement

import "testing"

// exercise drives p through a deterministic mixed workload (inserts,
// touches, demotes, victim picks) covering enough sets to hit DIP/DRRIP
// leader and follower sets and enough fills to advance the BIP/BRRIP
// bimodal counters. It returns the victim picks so callers can compare
// behaviour between instances.
func exercise(p Policy, numSets, assoc int) []int {
	picks := make([]int, 0, 4*numSets)
	state := uint64(0x243f6a8885a308d3)
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for round := 0; round < 4; round++ {
		for set := 0; set < numSets; set++ {
			w := p.Victim(set)
			picks = append(picks, w)
			p.Insert(set, w)
			p.Touch(set, next(assoc))
			if next(3) == 0 {
				p.Demote(set, next(assoc))
			}
			picks = append(picks, p.Victim(set))
		}
	}
	return picks
}

// TestResetStateEquivalence proves ResetState returns every policy to a
// state behaviourally indistinguishable from a fresh construction: the
// same workload replayed after a reset must produce the identical
// victim sequence a fresh policy produces. Pooled hierarchies reuse
// policies across runs through exactly this path, so any stale rank
// state, fill counter, or set-dueling selector here would silently skew
// reused-run results.
func TestResetStateEquivalence(t *testing.T) {
	const numSets, assoc = 64, 8
	for _, k := range allKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			reused := New(k, numSets, assoc)
			rs, ok := reused.(StateResetter)
			if !ok {
				t.Fatalf("%s does not implement StateResetter", k)
			}
			exercise(reused, numSets, assoc) // dirty every piece of state
			rs.ResetState()

			rc, ok := reused.(ResetChecker)
			if !ok {
				t.Fatalf("%s does not implement ResetChecker", k)
			}
			if err := rc.CheckResetState(); err != nil {
				t.Fatalf("post-reset state check: %v", err)
			}

			fresh := New(k, numSets, assoc)
			got := exercise(reused, numSets, assoc)
			want := exercise(fresh, numSets, assoc)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("victim pick %d diverges after reset: got way %d, fresh picks way %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCheckResetStateDetectsResidue proves the reset checks actually
// bite: a policy with any post-workload residue must fail them.
func TestCheckResetStateDetectsResidue(t *testing.T) {
	const numSets, assoc = 64, 8
	for _, k := range allKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			p := New(k, numSets, assoc)
			exercise(p, numSets, assoc)
			if err := p.(ResetChecker).CheckResetState(); err == nil {
				t.Fatal("exercised policy passes CheckResetState without a reset")
			}
		})
	}
}

// TestCheckSetCoverage verifies the audit hook now covers every policy
// family whose per-set metadata has an internal invariant, and that a
// well-formed fresh policy passes it.
func TestCheckSetCoverage(t *testing.T) {
	const numSets, assoc = 16, 8
	for _, k := range allKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			p := New(k, numSets, assoc)
			c, ok := p.(Checker)
			if !ok {
				t.Fatalf("%s does not implement Checker", k)
			}
			exercise(p, numSets, assoc)
			for s := 0; s < numSets; s++ {
				if err := c.CheckSet(s); err != nil {
					t.Fatalf("set %d: %v", s, err)
				}
			}
		})
	}
}

// TestSRRIPCheckSetDetectsCorruption plants an out-of-range RRPV and
// expects CheckSet to name it — the failure mode that would hang
// Victim's ageing scan.
func TestSRRIPCheckSetDetectsCorruption(t *testing.T) {
	p := newSRRIP(4, 4)
	p.rrpv[2*4+1] = p.max + 1
	if err := p.CheckSet(2); err == nil {
		t.Fatal("corrupt RRPV passes CheckSet")
	}
	if err := p.CheckSet(1); err != nil {
		t.Fatalf("clean set fails CheckSet: %v", err)
	}
}

// TestRandomCheckSetDetectsCorruption plants an out-of-range victim
// latch and expects CheckSet to name it.
func TestRandomCheckSetDetectsCorruption(t *testing.T) {
	p := newRandom(4, 4)
	p.victim[3] = 4
	if err := p.CheckSet(3); err == nil {
		t.Fatal("corrupt victim latch passes CheckSet")
	}
	if err := p.CheckSet(0); err != nil {
		t.Fatalf("clean set fails CheckSet: %v", err)
	}
}

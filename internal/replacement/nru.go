package replacement

// nru implements Not Recently Used replacement, the paper's baseline
// LLC policy. Each line carries one reference bit; a reference sets the
// bit, and when every bit in a set would become 1 all other bits are
// cleared (a new "generation"). The victim is the lowest-indexed way
// whose bit is clear, so at least one victim always exists.
type nru struct {
	assoc int
	ref   [][]bool // ref[set][way]
	live  []int    // number of set bits per set, to detect generations
}

func newNRU(numSets, assoc int) *nru {
	p := &nru{
		assoc: assoc,
		ref:   make([][]bool, numSets),
		live:  make([]int, numSets),
	}
	for s := range p.ref {
		p.ref[s] = make([]bool, assoc)
	}
	return p
}

func (p *nru) Name() string { return "NRU" }

// mark sets way's reference bit, starting a new generation if the set
// would otherwise have every bit set.
func (p *nru) mark(set, way int) {
	if !p.ref[set][way] {
		p.ref[set][way] = true
		p.live[set]++
	}
	if p.live[set] == p.assoc {
		for w := 0; w < p.assoc; w++ {
			p.ref[set][w] = w == way
		}
		p.live[set] = 1
	}
}

func (p *nru) Touch(set, way int)  { p.mark(set, way) }
func (p *nru) Insert(set, way int) { p.mark(set, way) }

func (p *nru) Demote(set, way int) {
	if p.ref[set][way] {
		p.ref[set][way] = false
		p.live[set]--
	}
}

func (p *nru) Victim(set int) int {
	for w := 0; w < p.assoc; w++ {
		if !p.ref[set][w] {
			return w
		}
	}
	// Unreachable: mark never leaves a set fully referenced.
	return 0
}

package replacement

// NRUBits implements Not Recently Used replacement, the paper's
// baseline LLC policy. Each line carries one reference bit; a reference
// sets the bit, and when every bit in a set would become 1 all other
// bits are cleared (a new "generation"). The victim is the
// lowest-indexed way whose bit is clear, so at least one victim always
// exists.
//
// The concrete type is exported so internal/cache can devirtualize the
// hot path (see LRUStack). Reference bits live in one flat backing
// array indexed set*assoc+way.
type NRUBits struct {
	//tlavet:resetexempt geometry fixed at construction, identical for every reuse
	assoc int
	ref   []bool  // ref[set*assoc+way]
	live  []int32 // number of set bits per set, to detect generations
}

func newNRU(numSets, assoc int) *NRUBits {
	return &NRUBits{
		assoc: assoc,
		ref:   make([]bool, numSets*assoc),
		live:  make([]int32, numSets),
	}
}

func (p *NRUBits) Name() string { return "NRU" }

// ResetState clears every reference bit.
func (p *NRUBits) ResetState() {
	for i := range p.ref {
		p.ref[i] = false
	}
	for i := range p.live {
		p.live[i] = 0
	}
}

// mark sets way's reference bit, starting a new generation if the set
// would otherwise have every bit set.
func (p *NRUBits) mark(set, way int) {
	base := set * p.assoc
	if !p.ref[base+way] {
		p.ref[base+way] = true
		p.live[set]++
	}
	if int(p.live[set]) == p.assoc {
		row := p.ref[base : base+p.assoc]
		for w := range row {
			row[w] = w == way
		}
		p.live[set] = 1
	}
}

// Touch records a reference to way.
func (p *NRUBits) Touch(set, way int) { p.mark(set, way) }

// Insert records a fill into way.
func (p *NRUBits) Insert(set, way int) { p.mark(set, way) }

// Demote clears way's reference bit so it is the next victim candidate.
func (p *NRUBits) Demote(set, way int) {
	if p.ref[set*p.assoc+way] {
		p.ref[set*p.assoc+way] = false
		p.live[set]--
	}
}

// Victim returns the lowest-indexed way with a clear reference bit.
func (p *NRUBits) Victim(set int) int {
	row := p.ref[set*p.assoc : set*p.assoc+p.assoc]
	for w := range row {
		if !row[w] {
			return w
		}
	}
	// Unreachable: mark never leaves a set fully referenced.
	return 0
}

package replacement

import "fmt"

// Checker is an optional interface a Policy may implement so the audit
// mode (internal/hierarchy's Auditor) can verify its per-set metadata
// is well-formed while a simulation runs.
type Checker interface {
	// CheckSet returns an error when set's replacement metadata is
	// internally inconsistent.
	CheckSet(set int) error
}

// ResetChecker is an optional interface a Policy may implement so
// reset-equivalence tests (and the pooled-hierarchy reuse path built on
// StateResetter) can verify a reset policy is indistinguishable from a
// freshly constructed one. Every policy with adaptive state implements
// it: a ResetState that leaves any rank state, fill counter, or
// set-dueling selector behind breaks fresh-vs-reset equivalence.
type ResetChecker interface {
	// CheckResetState returns an error when the policy's state differs
	// from its freshly constructed state.
	CheckResetState() error
}

// CheckSet verifies the LRU recency stack: set's stack row must be a
// permutation of the ways and (wide representation) its pos row the
// exact inverse. For the packed representation the nibbles at and above
// assoc must additionally be zero — the shift algebra in moveTo depends
// on it.
func (p *LRUStack) CheckSet(set int) error {
	if p.packed != nil {
		v := p.packed[set]
		var seen uint32
		for i := 0; i < p.assoc; i++ {
			w := v >> (4 * i) & 0xF
			if int(w) >= p.assoc {
				return fmt.Errorf("replacement: LRU set %d stack[%d] names way %d of %d", set, i, w, p.assoc)
			}
			if seen&(1<<w) != 0 {
				return fmt.Errorf("replacement: LRU set %d way %d appears twice in the stack", set, w)
			}
			seen |= 1 << w
		}
		if p.assoc < 16 && v>>(4*p.assoc) != 0 {
			return fmt.Errorf("replacement: LRU set %d has nonzero nibbles beyond way %d", set, p.assoc-1)
		}
		return nil
	}
	base := set * p.assoc
	st := p.stack[base : base+p.assoc]
	pos := p.pos[base : base+p.assoc]
	seen := make([]bool, p.assoc)
	for i, w := range st {
		if int(w) >= p.assoc {
			return fmt.Errorf("replacement: LRU set %d stack[%d] names way %d of %d", set, i, w, p.assoc)
		}
		if seen[w] {
			return fmt.Errorf("replacement: LRU set %d way %d appears twice in the stack", set, w)
		}
		seen[w] = true
		if int(pos[w]) != i {
			return fmt.Errorf("replacement: LRU set %d inverse map broken: pos[%d]=%d, want %d",
				set, w, pos[w], i)
		}
	}
	return nil
}

// CheckSet verifies the NRU generation invariant: the live count must
// equal the number of set reference bits, and a set is never fully
// referenced (mark starts a new generation instead), so Victim always
// has a candidate.
func (p *NRUBits) CheckSet(set int) error {
	n := 0
	for _, r := range p.ref[set*p.assoc : set*p.assoc+p.assoc] {
		if r {
			n++
		}
	}
	if n != int(p.live[set]) {
		return fmt.Errorf("replacement: NRU set %d live count %d but %d reference bits set", set, p.live[set], n)
	}
	if p.assoc > 1 && n == p.assoc {
		return fmt.Errorf("replacement: NRU set %d fully referenced: no victim candidate", set)
	}
	return nil
}

// CheckSet verifies the RRPV table: every value must be within the
// 2-bit range. Victim's ageing loop terminates only because some way
// eventually reaches exactly max — an out-of-range value (possible only
// through memory corruption or a future encoding bug) could loop
// forever by stepping past it.
func (p *SRRIPTable) CheckSet(set int) error {
	for w, v := range p.rrpv[set*p.assoc : set*p.assoc+p.assoc] {
		if v > p.max {
			return fmt.Errorf("replacement: SRRIP set %d way %d RRPV %d exceeds max %d", set, w, v, p.max)
		}
	}
	return nil
}

// CheckSet verifies the latched victim is either stale (-1) or a real
// way index.
func (p *random) CheckSet(set int) error {
	if v := p.victim[set]; v < -1 || v >= p.assoc {
		return fmt.Errorf("replacement: Random set %d latched victim %d out of range [0,%d)", set, v, p.assoc)
	}
	return nil
}

// CheckResetState verifies every set's recency order is the fresh
// identity order (way 0 most recent) on top of the structural CheckSet
// invariants.
func (p *LRUStack) CheckResetState() error {
	numSets := len(p.packed)
	if p.packed == nil {
		numSets = len(p.stack) / p.assoc
	}
	for s := 0; s < numSets; s++ {
		if err := p.CheckSet(s); err != nil {
			return err
		}
		for w := 0; w < p.assoc; w++ {
			if got := p.StackPosition(s, w); got != w {
				return fmt.Errorf("replacement: LRU set %d way %d at stack position %d after reset, want %d",
					s, w, got, w)
			}
		}
	}
	return nil
}

// CheckResetState verifies every reference bit and live count is clear.
func (p *NRUBits) CheckResetState() error {
	for i, r := range p.ref {
		if r {
			return fmt.Errorf("replacement: NRU set %d way %d referenced after reset", i/p.assoc, i%p.assoc)
		}
	}
	for s, n := range p.live {
		if n != 0 {
			return fmt.Errorf("replacement: NRU set %d live count %d after reset", s, n)
		}
	}
	return nil
}

// CheckResetState verifies every RRPV holds the fresh distant value.
func (p *SRRIPTable) CheckResetState() error {
	for i, v := range p.rrpv {
		if v != p.max {
			return fmt.Errorf("replacement: SRRIP set %d way %d RRPV %d after reset, want %d",
				i/p.assoc, i%p.assoc, v, p.max)
		}
	}
	return nil
}

// CheckResetState verifies the rng is rewound and every latch is stale.
func (p *random) CheckResetState() error {
	if p.state != randomSeed {
		return fmt.Errorf("replacement: Random rng state %#x after reset, want %#x", p.state, uint64(randomSeed))
	}
	for s, v := range p.victim {
		if v != -1 {
			return fmt.Errorf("replacement: Random set %d victim latch %d after reset, want -1", s, v)
		}
	}
	return nil
}

// CheckResetState verifies the stacks and the BIP fill counter.
func (p *bip) CheckResetState() error {
	if p.fills != 0 {
		return fmt.Errorf("replacement: BIP fill counter %d after reset", p.fills)
	}
	return p.LRUStack.CheckResetState()
}

// CheckResetState verifies the stacks, fill counter, and selector.
func (p *dip) CheckResetState() error {
	if p.fills != 0 {
		return fmt.Errorf("replacement: DIP fill counter %d after reset", p.fills)
	}
	if p.psel != dipPselMax/2 {
		return fmt.Errorf("replacement: DIP selector %d after reset, want %d", p.psel, dipPselMax/2)
	}
	return p.LRUStack.CheckResetState()
}

// CheckResetState verifies the RRPV table and the BRRIP fill counter.
func (p *brrip) CheckResetState() error {
	if p.fills != 0 {
		return fmt.Errorf("replacement: BRRIP fill counter %d after reset", p.fills)
	}
	return p.SRRIPTable.CheckResetState()
}

// CheckResetState verifies the RRPV table, fill counter, and selector.
func (p *drrip) CheckResetState() error {
	if p.fills != 0 {
		return fmt.Errorf("replacement: DRRIP fill counter %d after reset", p.fills)
	}
	if p.psel != dipPselMax/2 {
		return fmt.Errorf("replacement: DRRIP selector %d after reset, want %d", p.psel, dipPselMax/2)
	}
	return p.SRRIPTable.CheckResetState()
}

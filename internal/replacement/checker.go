package replacement

import "fmt"

// Checker is an optional interface a Policy may implement so the audit
// mode (internal/hierarchy's Auditor) can verify its per-set metadata
// is well-formed while a simulation runs.
type Checker interface {
	// CheckSet returns an error when set's replacement metadata is
	// internally inconsistent.
	CheckSet(set int) error
}

// CheckSet verifies the LRU recency stack: stack[set] must be a
// permutation of the ways and pos[set] its exact inverse.
func (p *lru) CheckSet(set int) error {
	seen := make([]bool, p.assoc)
	for i, w := range p.stack[set] {
		if int(w) >= p.assoc {
			return fmt.Errorf("replacement: LRU set %d stack[%d] names way %d of %d", set, i, w, p.assoc)
		}
		if seen[w] {
			return fmt.Errorf("replacement: LRU set %d way %d appears twice in the stack", set, w)
		}
		seen[w] = true
		if int(p.pos[set][w]) != i {
			return fmt.Errorf("replacement: LRU set %d inverse map broken: pos[%d]=%d, want %d",
				set, w, p.pos[set][w], i)
		}
	}
	return nil
}

// CheckSet verifies the NRU generation invariant: the live count must
// equal the number of set reference bits, and a set is never fully
// referenced (mark starts a new generation instead), so Victim always
// has a candidate.
func (p *nru) CheckSet(set int) error {
	n := 0
	for _, r := range p.ref[set] {
		if r {
			n++
		}
	}
	if n != p.live[set] {
		return fmt.Errorf("replacement: NRU set %d live count %d but %d reference bits set", set, p.live[set], n)
	}
	if p.assoc > 1 && n == p.assoc {
		return fmt.Errorf("replacement: NRU set %d fully referenced: no victim candidate", set)
	}
	return nil
}

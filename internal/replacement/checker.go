package replacement

import "fmt"

// Checker is an optional interface a Policy may implement so the audit
// mode (internal/hierarchy's Auditor) can verify its per-set metadata
// is well-formed while a simulation runs.
type Checker interface {
	// CheckSet returns an error when set's replacement metadata is
	// internally inconsistent.
	CheckSet(set int) error
}

// CheckSet verifies the LRU recency stack: set's stack row must be a
// permutation of the ways and (wide representation) its pos row the
// exact inverse. For the packed representation the nibbles at and above
// assoc must additionally be zero — the shift algebra in moveTo depends
// on it.
func (p *LRUStack) CheckSet(set int) error {
	if p.packed != nil {
		v := p.packed[set]
		var seen uint32
		for i := 0; i < p.assoc; i++ {
			w := v >> (4 * i) & 0xF
			if int(w) >= p.assoc {
				return fmt.Errorf("replacement: LRU set %d stack[%d] names way %d of %d", set, i, w, p.assoc)
			}
			if seen&(1<<w) != 0 {
				return fmt.Errorf("replacement: LRU set %d way %d appears twice in the stack", set, w)
			}
			seen |= 1 << w
		}
		if p.assoc < 16 && v>>(4*p.assoc) != 0 {
			return fmt.Errorf("replacement: LRU set %d has nonzero nibbles beyond way %d", set, p.assoc-1)
		}
		return nil
	}
	base := set * p.assoc
	st := p.stack[base : base+p.assoc]
	pos := p.pos[base : base+p.assoc]
	seen := make([]bool, p.assoc)
	for i, w := range st {
		if int(w) >= p.assoc {
			return fmt.Errorf("replacement: LRU set %d stack[%d] names way %d of %d", set, i, w, p.assoc)
		}
		if seen[w] {
			return fmt.Errorf("replacement: LRU set %d way %d appears twice in the stack", set, w)
		}
		seen[w] = true
		if int(pos[w]) != i {
			return fmt.Errorf("replacement: LRU set %d inverse map broken: pos[%d]=%d, want %d",
				set, w, pos[w], i)
		}
	}
	return nil
}

// CheckSet verifies the NRU generation invariant: the live count must
// equal the number of set reference bits, and a set is never fully
// referenced (mark starts a new generation instead), so Victim always
// has a candidate.
func (p *NRUBits) CheckSet(set int) error {
	n := 0
	for _, r := range p.ref[set*p.assoc : set*p.assoc+p.assoc] {
		if r {
			n++
		}
	}
	if n != int(p.live[set]) {
		return fmt.Errorf("replacement: NRU set %d live count %d but %d reference bits set", set, p.live[set], n)
	}
	if p.assoc > 1 && n == p.assoc {
		return fmt.Errorf("replacement: NRU set %d fully referenced: no victim candidate", set)
	}
	return nil
}

package replacement

// DRRIP (Dynamic RRIP, Jaleel et al. ISCA 2010 — the same authors'
// companion work the paper cites as [14]) set-duels SRRIP against
// BRRIP:
//
//   - BRRIP ("bimodal RRIP") inserts lines at the distant RRPV and only
//     occasionally (1/32) at long, making it thrash-resistant the same
//     way BIP is for LRU.
//   - DRRIP dedicates leader sets to each and steers follower sets with
//     a saturating PSEL counter trained by leader-set misses.
//
// Both reuse the srrip state machine, so hits, demotions, and victim
// search behave identically to SRRIP.

// Additional RRIP policy kinds.
const (
	// BRRIP is bimodal RRIP insertion.
	BRRIP Kind = iota + 200
	// DRRIP set-duels SRRIP against BRRIP.
	DRRIP
)

type brrip struct {
	*SRRIPTable
	fills uint64
}

func newBRRIP(numSets, assoc int) *brrip { return &brrip{SRRIPTable: newSRRIP(numSets, assoc)} }

func (p *brrip) Name() string { return "BRRIP" }

// ResetState restores the RRPV table and clears the fill counter.
func (p *brrip) ResetState() {
	p.SRRIPTable.ResetState()
	p.fills = 0
}

func (p *brrip) Insert(set, way int) {
	p.fills++
	if p.fills%bipEpsilonInverse == 0 {
		p.rrpv[set*p.assoc+way] = p.max - 1 // long
		return
	}
	p.rrpv[set*p.assoc+way] = p.max // distant
}

type drrip struct {
	*SRRIPTable
	fills uint64
	psel  int
}

func newDRRIP(numSets, assoc int) *drrip {
	return &drrip{SRRIPTable: newSRRIP(numSets, assoc), psel: dipPselMax / 2}
}

func (p *drrip) Name() string { return "DRRIP" }

// ResetState restores the RRPV table, fill counter, and selector.
func (p *drrip) ResetState() {
	p.SRRIPTable.ResetState()
	p.fills = 0
	p.psel = dipPselMax / 2
}

func (p *drrip) Insert(set, way int) {
	useBRRIP := false
	switch dipLeader(set) {
	case 0: // SRRIP leader missed: vote for BRRIP
		if p.psel < dipPselMax {
			p.psel++
		}
	case 1: // BRRIP leader missed: vote for SRRIP
		if p.psel > 0 {
			p.psel--
		}
		useBRRIP = true
	default:
		useBRRIP = p.psel > dipPselMax/2
	}
	if dipLeader(set) == 0 {
		p.SRRIPTable.Insert(set, way) // SRRIP leaders always insert long
		return
	}
	if useBRRIP {
		p.fills++
		if p.fills%bipEpsilonInverse == 0 {
			p.rrpv[set*p.assoc+way] = p.max - 1
		} else {
			p.rrpv[set*p.assoc+way] = p.max
		}
		return
	}
	p.SRRIPTable.Insert(set, way)
}

// PSEL exposes the selector for tests.
func (p *drrip) PSEL() int { return p.psel }
